"""Link-level analytics: per-link counters, stall accounting, hot-spot
detection and the measured-vs-analytic model diff (DESIGN.md section 14).

Three contracts are pinned here:

* the always-on core ``link_packets`` counter exists on *every* run and
  agrees with the event log (sum == total hops), and a run with
  ``ObsConfig(link_stats=True)`` is bit-identical to a plain run;
* the instrumented counters are exact — a golden per-link packet
  snapshot on the 4x4x2 torus, drop/retransmit attribution on faulty
  networks, and pooled (jobs=4) collection identical to sequential;
* the analytics layer recovers the paper's quantities — per-axis
  percent-of-peak, measured loads matching ``model/linkload.py`` within
  the packetization-overhead band, and a deliberately degraded link
  surfacing in both the hot-spot ranking and the degraded-link detector.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import simulate_alltoall
from repro.net.faults import FaultPlan
from repro.net.topology import TorusShape
from repro.obs import LinkAnalytics, parse_point_label
from repro.obs.config import ObsConfig
from repro.runner import SimPoint, counters, decode_run, encode_run, run_points
from repro.runner.pool import point_label
from repro.obs.context import observe
from repro.strategies import ARDirect

SHAPE = TorusShape.parse("4x4x2")
LS = ObsConfig(link_stats=True)

#: Pinned plain-run identity on 4x4x2 / ARDirect / m=256 / seed=1.  These
#: change only when simulator semantics change (bump the codec
#: SCHEMA_VERSION when they do).
GOLDEN_TIME_CYCLES = 42883.72000000001
GOLDEN_EVENTS = 21312
GOLDEN_TOTAL_HOPS = 5120

#: Golden per-link packet counts for the same run: 32 nodes x 6 directed
#: links (x+, x-, y+, y-, z+, z-), node = x + 4y + 16z.  The z extent is
#: 2, so each node uses exactly one z direction (mesh-degenerate axis).
GOLDEN_PACKETS = [
    30, 36, 32, 33, 29, 0, 28, 38, 32, 31, 34, 0, 36, 35, 29, 32, 30, 0,
    34, 33, 37, 32, 34, 0, 33, 34, 35, 29, 33, 0, 33, 31, 35, 35, 29, 0,
    30, 32, 30, 34, 31, 0, 31, 33, 34, 31, 37, 0, 33, 32, 30, 34, 34, 0,
    32, 32, 29, 34, 35, 0, 31, 28, 28, 33, 33, 0, 29, 32, 37, 31, 31, 0,
    33, 31, 31, 31, 27, 0, 34, 28, 30, 31, 31, 0, 34, 29, 34, 33, 31, 0,
    29, 30, 37, 31, 33, 0, 34, 27, 32, 29, 0, 28, 36, 31, 31, 32, 0, 33,
    35, 27, 37, 30, 0, 33, 37, 29, 25, 35, 0, 30, 31, 33, 30, 27, 0, 36,
    32, 28, 30, 35, 0, 32, 38, 35, 30, 34, 0, 29, 32, 29, 34, 32, 0, 34,
    31, 31, 33, 32, 0, 36, 30, 28, 34, 31, 0, 35, 32, 32, 33, 37, 0, 26,
    36, 35, 31, 28, 0, 32, 32, 30, 26, 35, 0, 33, 33, 30, 33, 30, 0, 32,
    30, 29, 33, 32, 0, 37, 37, 34, 28, 34, 0, 26,
]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


def _payload(run):
    return run.result.extras["obs"]["link_stats"]


class TestCoreCounter:
    def test_plain_run_carries_link_packets(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1)
        pk = run.result.link_packets
        assert pk is not None and pk.shape == (32, 6)
        assert pk.dtype == np.int64
        assert int(pk.sum()) == run.result.total_hops == GOLDEN_TOTAL_HOPS

    def test_plain_run_identity_is_pinned(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1)
        assert run.time_cycles == GOLDEN_TIME_CYCLES
        assert run.result.events_processed == GOLDEN_EVENTS

    def test_link_stats_run_is_bit_identical_to_plain(self):
        plain = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1)
        observed = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        assert observed.time_cycles == plain.time_cycles
        assert (
            observed.result.events_processed == plain.result.events_processed
        )
        np.testing.assert_array_equal(
            observed.result.link_busy_cycles, plain.result.link_busy_cycles
        )
        np.testing.assert_array_equal(
            observed.result.link_packets, plain.result.link_packets
        )

    def test_link_packets_survive_codec_round_trip(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1)
        back = decode_run(json.loads(json.dumps(encode_run(run))))
        np.testing.assert_array_equal(
            back.result.link_packets, run.result.link_packets
        )
        assert back.result.link_packets.dtype == np.int64


class TestGoldenCounters:
    def test_golden_per_link_packet_snapshot(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        p = _payload(run)
        assert p["packets"] == GOLDEN_PACKETS
        # The instrumented count is the core count, just re-surfaced.
        assert p["packets"] == run.result.link_packets.reshape(-1).tolist()

    def test_payload_totals_are_consistent(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        p = _payload(run)
        assert p["dims"] == [4, 4, 2]
        assert p["links_per_axis"] == [64, 64, 32]
        assert sum(p["packets"]) == run.result.total_hops
        assert sum(p["vc_packets"]) == sum(p["packets"])
        np.testing.assert_allclose(
            np.asarray(p["busy_cycles"]).reshape(32, 6),
            run.result.link_busy_cycles,
        )
        # Each hop moves the full wire image of its packet exactly once.
        assert sum(p["wire_bytes"]) > 0
        assert p["injected_wire_bytes"] == run.result.injected_wire_bytes
        assert p["time_cycles"] == run.result.time_cycles
        assert p["phase_busy"] and list(p["phase_busy"]) == ["direct"]

    def test_jobs1_and_jobs4_collect_identical_link_stats(self):
        pts = [
            SimPoint(ARDirect(), SHAPE, m, seed=1) for m in (64, 128, 256)
        ]
        with observe(LS) as seq:
            run_points(pts, jobs=1)
        with observe(LS) as par:
            run_points(pts, jobs=4)
        assert len(seq) == len(par) == 3
        assert json.dumps(seq, sort_keys=True) == json.dumps(
            par, sort_keys=True
        )

    def test_stalls_are_counted_under_contention(self):
        # m=4096 saturates the injection FIFOs/credits on 4x4x2, so the
        # idle-link-with-waiter condition actually occurs.
        run = simulate_alltoall(ARDirect(), SHAPE, 4096, seed=1, obs=LS)
        p = _payload(run)
        stall = np.asarray(p["stall_cycles"]).reshape(32, 6)
        pk = np.asarray(p["packets"]).reshape(32, 6)
        assert stall.sum() > 0.0
        assert (stall >= 0.0).all()
        # A stall interval always closes with a launch on that link.
        assert (pk[stall > 0] > 0).all()


class TestFaultAttribution:
    def test_drops_and_retx_land_on_the_right_links(self):
        plan = FaultPlan(loss_prob=0.05, seed=7)
        run = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, obs=LS
        )
        p = _payload(run)
        drops = np.asarray(p["drops"]).reshape(32, 6)
        pk = np.asarray(p["packets"]).reshape(32, 6)
        assert run.result.lost_packets > 0
        assert int(drops.sum()) == run.result.lost_packets
        assert sum(p["retx_by_node"]) == run.result.retransmitted_packets
        # A drop happens on a launched transmission: every link with a
        # drop also counted the launch itself.
        assert (pk[drops > 0] > 0).all()

    def test_faulty_link_stats_run_matches_plain_faulty_run(self):
        plan = FaultPlan(loss_prob=0.05, dead_nodes=frozenset({3}), seed=7)
        plain = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan
        )
        observed = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, obs=LS
        )
        assert observed.time_cycles == plain.time_cycles
        assert (
            observed.result.events_processed == plain.result.events_processed
        )
        assert observed.result.lost_packets == plain.result.lost_packets
        # Dead node 3 removes its links from the live per-axis counts.
        p = _payload(observed)
        assert p["links_per_axis"][0] < 64

    def test_degraded_wire_is_flagged_on_both_directions(self):
        # Degrading wire (node 5, x+) slows the physical link, i.e. both
        # directed channels: 5 -> 6 (x+) and 6 -> 5 (x-).
        plan = FaultPlan(degraded_links={(5, 0): 3.0}, seed=7)
        run = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, obs=LS
        )
        la = LinkAnalytics.from_payload(_payload(run))
        flagged = {
            (d["node"], d["direction"]): d["slowdown"]
            for d in la.degraded_links()
        }
        assert set(flagged) == {(5, "x+"), (6, "x-")}
        for slow in flagged.values():
            assert slow == pytest.approx(3.0)

    def test_hotspot_ranking_surfaces_the_degraded_link(self):
        plan = FaultPlan(degraded_links={(5, 0): 3.0}, seed=7)
        run = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, obs=LS
        )
        la = LinkAnalytics.from_payload(_payload(run))
        top = la.hotspots(top=2)
        assert {(h["node"], h["direction"]) for h in top} == {
            (5, "x+"),
            (6, "x-"),
        }
        assert top[0]["utilization"] >= top[1]["utilization"]


class TestAnalytics:
    def test_percent_of_peak_is_finite_and_bounded(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        la = LinkAnalytics.from_payload(_payload(run))
        axes = la.axis_percent_of_peak()
        assert len(axes) == 3
        for pct in axes:
            assert 0.0 < pct <= 100.0
        assert la.percent_of_peak() == max(axes)

    def test_from_result_works_without_payload(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1)
        la = LinkAnalytics.from_result(
            run.result, SHAPE, run.params.beta_cycles_per_byte
        )
        assert int(la.packets.sum()) == GOLDEN_TOTAL_HOPS
        assert la.percent_of_peak() > 0.0

    def test_measured_loads_match_linkload_model(self):
        # On a pristine direct-strategy run the measured wire bytes per
        # link exceed the analytic payload prediction by exactly the
        # packetization overhead message_wire_bytes(m)/m, identically on
        # every axis.
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        la = LinkAnalytics.from_payload(_payload(run))
        cmp = la.model_comparison(256)
        assert cmp["agrees"] is True
        expected = run.params.message_wire_bytes(256) / 256
        for row in cmp["per_axis"]:
            assert row["ratio"] == pytest.approx(expected)
        assert cmp["axis_spread"] == pytest.approx(0.0, abs=1e-12)

    def test_summary_is_json_ready_and_finite(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        la = LinkAnalytics.from_payload(_payload(run))
        s = la.summary(msg_bytes=256)
        json.dumps(s, allow_nan=False)  # raises on NaN/inf
        assert s["percent_of_peak"] > 0.0
        assert s["model"]["agrees"] is True
        assert s["degraded_links"] == []

    def test_phase_table_accounts_all_busy_cycles(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        la = LinkAnalytics.from_payload(_payload(run))
        rows = la.phase_table()
        assert [r["phase"] for r in rows] == ["direct"]
        assert rows[0]["busy_cycles"] == pytest.approx(
            float(run.result.link_busy_cycles.sum())
        )

    def test_axis_node_utilization_raster(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=LS)
        la = LinkAnalytics.from_payload(_payload(run))
        for axis in range(3):
            raster = la.axis_node_utilization(axis)
            assert raster.shape == (32,)
            assert np.isfinite(raster).all()
            assert (raster >= 0.0).all()

    def test_parse_point_label_round_trips(self):
        pt = SimPoint(ARDirect(), SHAPE, 256, seed=3)
        meta = parse_point_label(point_label(pt))
        assert meta["dims"] == (4, 4, 2)
        assert meta["msg_bytes"] == 256
        assert meta["seed"] == 3
        assert meta["faulty"] is False
        faulty = SimPoint(
            ARDirect(), SHAPE, 256, seed=3,
            faults=FaultPlan(loss_prob=0.1, seed=1),
        )
        assert parse_point_label(point_label(faulty))["faulty"] is True
