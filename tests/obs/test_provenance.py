"""Provenance records, obs context, config validation, logging setup."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import (
    ObsConfig,
    active_config,
    collect,
    config_fingerprint,
    git_describe,
    observe,
    provenance_record,
    setup_logging,
)


class TestObsConfig:
    def test_disabled_by_default(self):
        cfg = ObsConfig()
        assert not cfg.enabled

    def test_enabled_when_any_layer_on(self):
        assert ObsConfig(trace=True).enabled
        assert ObsConfig(metrics=True).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_sample=0)
        with pytest.raises(ValueError):
            ObsConfig(trace_capacity=0)
        with pytest.raises(ValueError):
            ObsConfig(metrics_bucket_cycles=0.0)


class TestContext:
    def test_inactive_by_default(self):
        assert active_config() is None
        collect("p", {"trace": {}})  # no-op, must not raise

    def test_observe_activates_and_restores(self):
        cfg = ObsConfig(trace=True)
        with observe(cfg) as got:
            assert active_config() is cfg
            collect("p0", {"trace": {"total": 1}})
            assert got == [{"trace": {"total": 1}, "point": "p0"}]
        assert active_config() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe(ObsConfig(metrics=True)):
                raise RuntimeError("boom")
        assert active_config() is None


class TestProvenance:
    def test_fingerprint_depends_on_keys_and_order(self):
        a = config_fingerprint(["k1", "k2"])
        assert a == config_fingerprint(["k1", "k2"])
        assert a != config_fingerprint(["k2", "k1"])
        assert a != config_fingerprint(["k1"])

    def test_git_describe_returns_nonempty_string(self):
        assert git_describe()
        assert isinstance(git_describe(), str)

    def test_git_describe_degrades_when_git_is_missing(self, monkeypatch):
        import subprocess

        def no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(subprocess, "run", no_git)
        git_describe.cache_clear()
        try:
            assert git_describe() == "unavailable"
        finally:
            git_describe.cache_clear()

    def test_git_describe_degrades_on_timeout(self, monkeypatch):
        import subprocess

        def wedged(cmd, **kwargs):
            raise subprocess.TimeoutExpired(cmd, kwargs.get("timeout", 5))

        monkeypatch.setattr(subprocess, "run", wedged)
        git_describe.cache_clear()
        try:
            assert git_describe() == "unavailable"
        finally:
            git_describe.cache_clear()

    def test_record_is_json_native(self):
        rec = provenance_record(
            schema_version=1,
            seed=3,
            scale="tiny",
            point_keys=["a", "b"],
            wall_s=1.23456,
            simulated_cycles=1000.0,
            simulated_events=42,
            points_simulated=1,
            points_cached=1,
        )
        assert json.loads(json.dumps(rec)) == rec
        assert rec["points"] == 2
        assert rec["seed"] == 3
        assert rec["wall_s"] == 1.2346
        # Supervision counters default to a clean, complete run.
        assert rec["points_failed"] == 0
        assert rec["retries"] == 0
        assert rec["timeouts"] == 0
        assert rec["quarantined"] == 0

    def test_record_carries_supervision_counters(self):
        rec = provenance_record(
            schema_version=1,
            seed=0,
            scale="tiny",
            point_keys=["a"],
            wall_s=0.1,
            simulated_cycles=1.0,
            simulated_events=1,
            points_simulated=1,
            points_cached=0,
            retries=3,
            timeouts=2,
            quarantined=1,
            points_failed=1,
        )
        assert rec["retries"] == 3
        assert rec["timeouts"] == 2
        assert rec["quarantined"] == 1
        assert rec["points_failed"] == 1

    def test_run_experiment_attaches_provenance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.experiments.registry import run_experiment
        from repro.runner import SCHEMA_VERSION, counters

        counters.reset()
        result = run_experiment("fig5_vmesh_pred", scale="tiny", seed=0)
        prov = result.provenance
        assert prov is not None
        assert prov["schema_version"] == SCHEMA_VERSION
        assert prov["scale"] == "tiny"
        assert prov["points"] == (
            prov["points_simulated"] + prov["points_cached"]
        )
        assert prov["wall_s"] >= 0.0
        # Same experiment again: identical config fingerprint.
        again = run_experiment("fig5_vmesh_pred", scale="tiny", seed=0)
        assert (
            again.provenance["config_fingerprint"]
            == prov["config_fingerprint"]
        )


class TestLogging:
    @pytest.fixture(autouse=True)
    def _restore_repro_logger(self):
        logger = logging.getLogger("repro")
        handlers = list(logger.handlers)
        level = logger.level
        propagate = logger.propagate
        yield
        logger.handlers[:] = handlers
        logger.setLevel(level)
        logger.propagate = propagate

    def test_levels(self):
        logger = setup_logging(0)
        assert logger.level == logging.WARNING
        assert setup_logging(-1).level == logging.ERROR
        assert setup_logging(1).level == logging.INFO
        assert setup_logging(2).level == logging.DEBUG

    def test_idempotent_handler(self):
        setup_logging(0)
        logger = setup_logging(1)
        cli_handlers = [
            h for h in logger.handlers if getattr(h, "_repro_cli", False)
        ]
        assert len(cli_handlers) == 1
