"""Live sweep telemetry: coordinator, renderer, heartbeats (DESIGN.md §15).

The non-negotiables: a non-TTY stream never sees ANSI control sequences
(CI logs stay clean), the status line and log records share one stream
without shredding each other, and the renderer's summary arithmetic
(done counts, cache split, EWMA ETA, stale-heartbeat callout) is right.
"""

from __future__ import annotations

import io
import logging
import os

import pytest

from repro.net.topology import TorusShape
from repro.obs.progress import (
    STALE_AFTER_S,
    CoordinatedStreamHandler,
    OutputCoordinator,
    SweepProgress,
    coordinated_handler,
    coordinator,
    progress_wanted,
    resolve_progress,
)
from repro.runner import SimPoint, counters, run_points
from repro.strategies import ARDirect


class TtyStringIO(io.StringIO):
    """A capture stream that claims to be a terminal."""

    def isatty(self) -> bool:
        return True


class Task:
    def __init__(self, key: str, label: str = "", attempt: int = 1):
        self.key = key
        self.label = label or key
        self.attempt = attempt


@pytest.fixture(autouse=True)
def _clean_coordinator():
    yield
    coordinator.end_status()


@pytest.fixture(autouse=True)
def _pristine_repro_logger():
    """CLI tests elsewhere in the suite call setup_logging(), which parks
    a handler on the ``repro`` logger and stops propagation.  Left alone,
    that starves caplog and replays records into the (now closed) capture
    stream of whichever test installed it.  Run with a bare, propagating
    logger and put everything back afterwards."""
    logger = logging.getLogger("repro")
    saved_handlers = logger.handlers[:]
    saved_propagate = logger.propagate
    for h in saved_handlers:
        logger.removeHandler(h)
    logger.propagate = True
    try:
        yield
    finally:
        for h in logger.handlers[:]:
            logger.removeHandler(h)
        for h in saved_handlers:
            logger.addHandler(h)
        logger.propagate = saved_propagate


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    counters.reset()


class TestOutputCoordinator:
    def test_non_tty_stream_never_sees_ansi(self):
        co = OutputCoordinator()
        plain = io.StringIO()
        assert co.begin_status(plain) is False
        # A renderer honoring the False return never calls set_status;
        # log records pass straight through, byte for byte.
        co.log_write(plain, "hello\n")
        co.end_status()
        assert plain.getvalue() == "hello\n"
        assert "\x1b" not in plain.getvalue()

    def test_tty_status_line_paints_and_erases(self):
        co = OutputCoordinator()
        tty = TtyStringIO()
        assert co.begin_status(tty) is True
        co.set_status("sweep 1/4 done")
        assert tty.getvalue().endswith("\r\x1b[2Ksweep 1/4 done")
        co.end_status()
        assert tty.getvalue().endswith("\r\x1b[2K")  # line erased

    def test_log_record_lifts_status_out_of_the_way(self):
        co = OutputCoordinator()
        tty = TtyStringIO()
        co.begin_status(tty)
        co.set_status("STATUS")
        co.log_write(tty, "a log record\n")
        out = tty.getvalue()
        # erase -> record -> repaint: the record sits on its own line
        # and the status line survives it.
        assert "\r\x1b[2Ka log record\n" in out
        assert out.endswith("\r\x1b[2KSTATUS")
        co.end_status()

    def test_status_truncated_to_terminal_width(self, monkeypatch):
        monkeypatch.setattr(
            "repro.obs.progress.shutil.get_terminal_size",
            lambda fallback=None: os.terminal_size((30, 24)),
        )
        co = OutputCoordinator()
        tty = TtyStringIO()
        co.begin_status(tty)
        co.set_status("x" * 100)
        assert tty.getvalue().endswith("\r\x1b[2K" + "x" * 29)
        co.end_status()

    def test_closed_stream_is_swallowed(self):
        co = OutputCoordinator()
        tty = TtyStringIO()
        co.begin_status(tty)
        tty.close()
        co.set_status("late")  # must not raise during teardown
        co.end_status()


class TestCoordinatedHandler:
    def test_handler_routes_through_coordinator(self):
        stream = TtyStringIO()
        handler = coordinated_handler(stream)
        assert isinstance(handler, CoordinatedStreamHandler)
        logger = logging.Logger("test.coordinated")
        logger.addHandler(handler)
        coordinator.begin_status(stream)
        coordinator.set_status("STATUS")
        logger.warning("a warning")
        out = stream.getvalue()
        assert "a warning" in out
        assert out.endswith("\r\x1b[2KSTATUS")  # status redrawn after
        coordinator.end_status()


class TestSweepProgress:
    def _progress(self, stream=None) -> SweepProgress:
        p = SweepProgress(
            stream=stream or TtyStringIO(), render_interval_s=0.0
        )
        p.begin(total=4, cached=1, jobs=2)
        return p

    def test_summary_counts(self):
        p = self._progress()
        p.event("start", Task("a"))
        p.event("start", Task("b"))
        p.complete(Task("a"))
        s = p._summary_locked()
        assert "2/4 done" in s  # 1 cached + 1 completed
        assert "1 running" in s
        assert "cache 1/4 (25%)" in s
        p.finish()

    def test_failed_and_retrying_show_up(self):
        p = self._progress()
        p.event("start", Task("a"))
        p.event("retry", Task("a"))
        p.event("start", Task("b"))
        p.event("failed", Task("b"))
        s = p._summary_locked()
        assert "1 retrying" in s
        assert "1 failed" in s
        assert "1 retries" in s
        p.finish()

    def test_eta_from_ewma(self):
        p = self._progress()
        p.event("start", Task("a"))
        p.complete(Task("a"))
        p._ewma_s = 10.0  # pin the smoothed duration for determinism
        p.event("start", Task("b"))
        s = p._summary_locked()
        # 2 points remain (4 total - 1 cached - 1 done) at 10s each over
        # 2 workers -> 10s.
        assert "eta 0:10" in s
        p.finish()

    def test_stale_heartbeat_called_out(self):
        p = self._progress()
        p.event("start", Task("k", label="8x8x8/m64"))
        p.heartbeat(
            {
                "key": "k",
                "label": "8x8x8/m64",
                "elapsed_s": STALE_AFTER_S + 5.0,
                "sim_cycles": 1234.5,
            }
        )
        s = p._summary_locked()
        assert "slowest 8x8x8/m64 10s" in s
        assert "@ 1.23e+03 cycles" in s
        assert p.heartbeats == 1
        p.finish()

    def test_fresh_heartbeat_not_called_out(self):
        p = self._progress()
        p.event("start", Task("k"))
        p.heartbeat({"key": "k", "elapsed_s": 0.1, "sim_cycles": 1.0})
        assert "slowest" not in p._summary_locked()
        p.finish()

    def test_pool_break_clears_in_flight_state(self):
        p = self._progress()
        p.event("start", Task("a"))
        p.heartbeat({"key": "a", "elapsed_s": 99.0})
        p.event("pool_break", Task("a"))
        s = p._summary_locked()
        assert "running" not in s and "slowest" not in s
        p.finish()

    def test_tty_renders_status_line(self):
        tty = TtyStringIO()
        p = self._progress(stream=tty)
        p.event("start", Task("a"))
        assert "sweep 1/4 done" in tty.getvalue()
        p.finish()
        assert tty.getvalue().endswith("\r\x1b[2K")

    def test_non_tty_logs_instead_of_painting(self, caplog):
        plain = io.StringIO()
        with caplog.at_level(logging.INFO, logger="repro.obs.progress"):
            p = SweepProgress(stream=plain)
            p.begin(total=2, cached=0, jobs=1)
            p.finish()
        assert "\x1b" not in plain.getvalue()
        messages = [r.getMessage() for r in caplog.records]
        assert any(m.startswith("sweep progress:") for m in messages)
        assert any(m.startswith("sweep finished:") for m in messages)


class TestActivation:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert progress_wanted() is False
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert progress_wanted() is True

    def test_default_follows_repro_logger_level(self, monkeypatch):
        logger = logging.getLogger("repro")
        old = logger.level
        try:
            logger.setLevel(logging.ERROR)  # --quiet
            assert progress_wanted() is False
            logger.setLevel(logging.INFO)
            assert progress_wanted() is True
        finally:
            logger.setLevel(old)

    def test_resolve_progress_gates(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert resolve_progress(0) is None  # nothing to watch
        assert isinstance(resolve_progress(3), SweepProgress)
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert resolve_progress(3) is None


class TestSweepIntegration:
    def test_run_points_drives_the_renderer(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        shape = TorusShape.parse("2x2x2")
        pts = [SimPoint(ARDirect(), shape, m, seed=1) for m in (32, 64)]
        with caplog.at_level(logging.INFO, logger="repro.obs.progress"):
            run_points(pts)
        messages = [r.getMessage() for r in caplog.records]
        finished = [m for m in messages if m.startswith("sweep finished:")]
        assert finished and "2/2 done" in finished[0]

    def test_supervised_sweep_emits_heartbeats(self, monkeypatch):
        from repro.runner.pool import run_sweep

        monkeypatch.setenv("REPRO_PROGRESS", "1")
        shape = TorusShape.parse("2x2x2")
        pts = [SimPoint(ARDirect(), shape, m, seed=1) for m in (32, 64)]
        sweep = run_sweep(pts)  # graceful => supervised sequential path
        assert sweep.failures == []
        # Every supervised attempt emits one heartbeat immediately.
        assert counters.heartbeats >= 2

    def test_progress_off_is_silent(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        shape = TorusShape.parse("2x2x2")
        pts = [SimPoint(ARDirect(), shape, 32, seed=1)]
        with caplog.at_level(logging.INFO, logger="repro.obs.progress"):
            run_points(pts)
        assert not [
            r for r in caplog.records if r.name == "repro.obs.progress"
        ]
