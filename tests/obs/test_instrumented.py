"""Instrumented network: bit-identity with plain runs, golden trace,
and trace determinism across job counts."""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import simulate_alltoall
from repro.model.torus import TorusShape
from repro.net.faults import FaultPlan
from repro.net.faultsim import build_network
from repro.net.instrumented import (
    InstrumentedFaultyTorusNetwork,
    InstrumentedTorusNetwork,
)
from repro.net.simulator import TorusNetwork
from repro.obs import ObsConfig, observe
from repro.obs.tracer import write_jsonl
from repro.runner import SimPoint, counters, run_points
from repro.strategies import ARDirect, TwoPhaseSchedule

GOLDEN = Path(__file__).parent / "data" / "golden_trace_4x4x2.jsonl"

SHAPE = TorusShape.parse("4x4x2")
OBS_ALL = ObsConfig(trace=True, metrics=True)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


def _golden_jsonl(run) -> str:
    buf = io.StringIO()
    write_jsonl(run.result.extras["obs"]["trace"], buf)
    return buf.getvalue()


class TestBuildNetwork:
    def test_default_is_uninstrumented(self):
        assert type(build_network(SHAPE)) is TorusNetwork

    def test_disabled_config_is_uninstrumented(self):
        assert type(build_network(SHAPE, obs=ObsConfig())) is TorusNetwork

    def test_enabled_config_selects_instrumented(self):
        net = build_network(SHAPE, obs=OBS_ALL)
        assert type(net) is InstrumentedTorusNetwork
        faulty = build_network(
            SHAPE, faults=FaultPlan(loss_prob=0.01), obs=OBS_ALL
        )
        assert type(faulty) is InstrumentedFaultyTorusNetwork


class TestBitIdentity:
    @pytest.mark.parametrize("strategy_cls", [ARDirect, TwoPhaseSchedule])
    def test_traced_run_matches_untraced(self, strategy_cls):
        plain = simulate_alltoall(strategy_cls(), SHAPE, 256, seed=1)
        traced = simulate_alltoall(
            strategy_cls(), SHAPE, 256, seed=1, obs=OBS_ALL
        )
        assert traced.time_cycles == plain.time_cycles
        assert (
            traced.result.events_processed == plain.result.events_processed
        )
        assert (
            traced.result.delivered_packets == plain.result.delivered_packets
        )
        assert np.array_equal(
            traced.result.link_busy_cycles, plain.result.link_busy_cycles
        )

    def test_traced_faulty_run_matches_untraced(self):
        plan = FaultPlan(
            loss_prob=0.05, dead_nodes=frozenset({3}), seed=7
        )
        plain = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan
        )
        traced = simulate_alltoall(
            ARDirect(), SHAPE, 256, seed=1, faults=plan, obs=OBS_ALL
        )
        assert traced.time_cycles == plain.time_cycles
        assert (
            traced.result.events_processed == plain.result.events_processed
        )
        assert traced.result.lost_packets == plain.result.lost_packets
        assert (
            traced.result.retransmitted_packets
            == plain.result.retransmitted_packets
        )
        counts = traced.result.extras["obs"]["trace"]["counts"]
        assert counts["drop"] == plain.result.lost_packets
        assert counts["retx"] == plain.result.retransmitted_packets

    def test_trace_counts_match_sim_stats(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=OBS_ALL)
        counts = run.result.extras["obs"]["trace"]["counts"]
        assert counts["inject"] == run.result.injected_packets
        assert counts["deliver"] == run.result.delivered_packets

    def test_metrics_utilization_is_sane(self):
        run = simulate_alltoall(ARDirect(), SHAPE, 256, seed=1, obs=OBS_ALL)
        m = run.result.extras["obs"]["metrics"]
        for axis in ("x", "y", "z"):
            series = m[f"link_utilization.{axis}"]["utilization"]
            assert series, f"axis {axis} series is empty"
            assert all(0.0 <= u <= 1.0 + 1e-9 for u in series)
        # Busy-cycle mass in the series equals the simulator's own
        # accounting, axis by axis.
        busy = run.result.link_busy_cycles
        for a, axis in enumerate(("x", "y", "z")):
            assert sum(m[f"link_busy_cycles.{axis}"]["buckets"]) == (
                pytest.approx(float(busy[:, [2 * a, 2 * a + 1]].sum()))
            )

    def test_sampling_reduces_events_deterministically(self):
        full = simulate_alltoall(ARDirect(), SHAPE, 64, seed=1, obs=OBS_ALL)
        sampled = simulate_alltoall(
            ARDirect(), SHAPE, 64, seed=1,
            obs=ObsConfig(trace=True, trace_sample=4),
        )
        f = full.result.extras["obs"]["trace"]
        s = sampled.result.extras["obs"]["trace"]
        assert 0 < s["counts"]["inject"] < f["counts"]["inject"]
        pids = {
            row[4] for row in s["events"] if row[2] == "inject"
        }
        assert all(pid % 4 == 0 for pid in pids)


#: The committed golden trace uses sampling so the file stays small
#: while still covering every exporter code path.
GOLDEN_OBS = ObsConfig(trace=True, trace_sample=8)


class TestGoldenTrace:
    def test_golden_trace_is_reproduced(self):
        run = simulate_alltoall(
            ARDirect(), SHAPE, 64, seed=1, obs=GOLDEN_OBS
        )
        assert _golden_jsonl(run) == GOLDEN.read_text()


class TestRunnerDeterminism:
    def test_jobs1_and_jobs4_collect_identical_traces(self):
        pts = [
            SimPoint(ARDirect(), SHAPE, m, seed=1) for m in (64, 128, 192)
        ]
        with observe(OBS_ALL) as seq:
            run_points(pts, jobs=1)
        with observe(OBS_ALL) as par:
            run_points(pts, jobs=4)
        assert len(seq) == len(par) == 3
        assert json.dumps(seq, sort_keys=True) == json.dumps(
            par, sort_keys=True
        )

    def test_observed_runs_bypass_cache(self):
        pts = [SimPoint(ARDirect(), SHAPE, 64, seed=1)]
        run_points(pts)  # populate the cache
        assert counters.cache_stores == 1
        counters.reset()
        with observe(OBS_ALL):
            run_points(pts)
        assert counters.simulated == 1  # not served from cache
        assert counters.cache_hits == 0
        assert counters.cache_stores == 0  # and not stored either
        counters.reset()
        plain = run_points(pts)[0]  # cached entry still clean
        assert counters.cache_hits == 1
        assert plain.result.extras.get("obs") is None

    def test_explicit_obs_arg_works_without_context(self):
        pts = [SimPoint(ARDirect(), SHAPE, 64, seed=1)]
        runs = run_points(pts, obs=OBS_ALL)
        assert "obs" in runs[0].result.extras
        assert runs[0].result.extras["obs"]["trace"]["total"] > 0
