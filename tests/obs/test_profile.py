"""Phase-level time profiler (DESIGN.md section 15).

Two contracts matter: profiling must not perturb the simulation (a
profiled run is bit-identical to a plain one — time, events, exact
per-link busy cycles), and the attribution itself must be exact in
simulated cycles (host wall/CPU time is a labeled estimate).
"""

from __future__ import annotations

import json

import pytest

from repro.api import simulate_alltoall
from repro.net.topology import TorusShape
from repro.obs.config import ObsConfig
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PhaseProfiler,
    merge_profiles,
    profile_chrome_events,
)
from repro.runner import counters
from repro.runner.codec import decode_run, encode_run, roundtrip_run
from repro.strategies import ARDirect, TwoPhaseSchedule

SHAPE = TorusShape.parse("4x4x4")
MSG = 64


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    counters.reset()


def _run(strategy, obs=None):
    return simulate_alltoall(strategy, SHAPE, MSG, seed=1, obs=obs)


class TestUnit:
    def test_launches_and_deliveries_aggregate(self):
        prof = PhaseProfiler(ndim=3)
        prof.on_launch("tps1", 0, 10.0, 4.0)
        prof.on_launch("tps1", 2, 20.0, 6.0)
        prof.on_launch("tps2", 1, 30.0, 2.0)
        prof.on_delivery("tps1", 40.0, final=False)
        prof.on_delivery("tps2", 50.0, final=True)
        payload = prof.to_payload(
            time_cycles=50.0, events_processed=5, wall_s=1.0, cpu_s=0.5
        )
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["total_busy_cycles"] == 12.0
        t1 = payload["phases"]["tps1"]
        assert t1["launches"] == 2 and t1["deliveries"] == 1
        assert t1["final_deliveries"] == 0
        assert t1["busy_by_axis"] == {"x": 4.0, "y": 0.0, "z": 6.0}
        assert t1["first_cycle"] == 10.0 and t1["last_cycle"] == 40.0
        assert t1["span_cycles"] == 30.0
        assert t1["busy_share"] == pytest.approx(10.0 / 12.0)
        # Host time splits by busy share and is labeled an estimate.
        assert t1["wall_s_est"] == pytest.approx(10.0 / 12.0)
        t2 = payload["phases"]["tps2"]
        assert t2["final_deliveries"] == 1
        assert t1["wall_s_est"] + t2["wall_s_est"] == pytest.approx(1.0)

    def test_empty_profiler_payload(self):
        payload = PhaseProfiler(ndim=3).to_payload(0.0, 0)
        assert payload["phases"] == {}
        assert payload["total_busy_cycles"] == 0.0
        assert "wall_s" not in payload


class TestBitIdentity:
    @pytest.mark.parametrize(
        "strategy_cls", [ARDirect, TwoPhaseSchedule]
    )
    def test_profiled_run_is_bit_identical(self, strategy_cls):
        """The acceptance criterion: profiling-on simulates the exact
        same event stream as the plain un-instrumented path."""
        plain = _run(strategy_cls())
        prof = _run(strategy_cls(), obs=ObsConfig(profile=True))
        assert prof.result.time_cycles == plain.result.time_cycles
        assert (
            prof.result.events_processed == plain.result.events_processed
        )
        assert (
            prof.result.link_busy_cycles.tolist()
            == plain.result.link_busy_cycles.tolist()
        )
        assert (
            prof.result.delivered_packets == plain.result.delivered_packets
        )

    def test_plain_run_carries_no_profile(self):
        run = _run(TwoPhaseSchedule())
        assert "obs" not in run.result.extras


class TestSimulatedAttribution:
    @pytest.fixture(scope="class")
    def payload(self):
        run = _run(TwoPhaseSchedule(), obs=ObsConfig(profile=True))
        return run.result.extras["obs"]["profile"]

    def test_tps_phases_present_and_busy(self, payload):
        assert sorted(payload["phases"]) == ["tps1", "tps2"]
        for e in payload["phases"].values():
            assert e["launches"] > 0
            assert e["busy_cycles"] > 0
            assert 0.0 < e["busy_share"] < 1.0
            assert e["first_cycle"] <= e["last_cycle"]
        shares = [e["busy_share"] for e in payload["phases"].values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_busy_cycles_sum_matches_link_stats(self, payload):
        """The profiler's per-phase busy cycles are exact: they sum to
        the simulator's own total link-busy time."""
        run = _run(TwoPhaseSchedule())
        total = float(run.result.link_busy_cycles.sum())
        assert payload["total_busy_cycles"] == pytest.approx(total)

    def test_deliveries_match_packet_count(self, payload):
        run = _run(TwoPhaseSchedule())
        delivered = run.result.delivered_packets
        assert (
            sum(e["deliveries"] for e in payload["phases"].values())
            == delivered
        )

    def test_host_time_attached(self, payload):
        assert payload["wall_s"] > 0.0
        assert payload["cpu_s"] > 0.0

    def test_payload_survives_the_codec(self):
        run = _run(TwoPhaseSchedule(), obs=ObsConfig(profile=True))
        again = decode_run(encode_run(run))
        assert (
            again.result.extras["obs"]["profile"]
            == run.result.extras["obs"]["profile"]
        )
        roundtrip_run(run)  # canonical-extras check must accept it

    def test_metrics_fold_in_exact_cycle_counters(self):
        run = _run(
            TwoPhaseSchedule(), obs=ObsConfig(profile=True, metrics=True)
        )
        obs = run.result.extras["obs"]
        metrics = obs["metrics"]
        prof = obs["profile"]
        for name in ("tps1", "tps2"):
            assert metrics[f"profile.busy_cycles.{name}"]["value"] == (
                prof["phases"][name]["busy_cycles"]
            )
            assert metrics[f"profile.launches.{name}"]["value"] == (
                prof["phases"][name]["launches"]
            )


class TestExporters:
    def _payload(self):
        prof = PhaseProfiler(ndim=3)
        prof.on_launch("tps1", 0, 0.0, 10.0)
        prof.on_launch("tps2", 1, 5.0, 10.0)
        return prof.to_payload(20.0, 4, wall_s=2.0)

    def test_chrome_events_span_track(self):
        events = list(profile_chrome_events(self._payload(), label="pt"))
        (proc,) = [e for e in events if e["name"] == "process_name"]
        assert proc["args"]["name"] == "pt:phase profile"
        spans = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in spans} == {"tps1", "tps2"}
        for s in spans:
            assert s["dur"] >= 0 and "busy_share" in s["args"]
        json.dumps(events)  # must be JSON-native

    def test_merge_profiles_sums_counts(self):
        a, b = self._payload(), self._payload()
        merged = merge_profiles([a, b])
        assert merged["points"] == 2
        assert merged["total_busy_cycles"] == 40.0
        assert merged["phases"]["tps1"]["launches"] == 2
        assert merged["phases"]["tps1"]["busy_share"] == pytest.approx(0.5)
        assert merged["wall_s"] == pytest.approx(4.0)
        # Spans are meaningless across points and must not be merged.
        assert "first_cycle" not in merged["phases"]["tps1"]

    def test_merge_profiles_empty(self):
        merged = merge_profiles([])
        assert merged["points"] == 0 and merged["phases"] == {}
