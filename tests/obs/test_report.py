"""HTML run report + JSON sidecar generation (DESIGN.md section 14).

The report is the user-facing end of the link-analytics pipeline: every
collected point must land in the sidecar with a finite percent-of-peak
(the CI gate greps for exactly that), the HTML must be self-contained,
and NaN anywhere in the sidecar must fail loudly instead of serializing.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.api import simulate_alltoall
from repro.experiments.common import ExperimentResult
from repro.net.topology import TorusShape
from repro.obs.config import ObsConfig
from repro.obs.context import observe
from repro.obs.report import (
    REPORT_HTML,
    REPORT_JSON,
    build_sidecar,
    render_html,
    write_report,
)
from repro.runner import SimPoint, counters, run_points
from repro.strategies import ARDirect

SHAPE = TorusShape.parse("4x4x2")
OBS = ObsConfig(metrics=True, link_stats=True)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


@pytest.fixture(scope="module")
def entries():
    """Two collected observation entries (64 B and 256 B points)."""
    pts = [SimPoint(ARDirect(), SHAPE, m, seed=1) for m in (64, 256)]
    with observe(OBS) as collected:
        run_points(pts)
    return collected


def _experiment() -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig1_ar_midplane",
        title="AR direct on a midplane",
        columns=["m bytes", "measured us"],
    )
    res.rows = [
        {"m bytes": 64, "measured us": 10.5},
        {"m bytes": 256, "measured us": 42.0},
    ]
    res.notes.append("partition simulated: 4x4x2 (test)")
    res.provenance = {"seed": 1, "wall_s": 0.5, "points_simulated": 2}
    return res


class TestSidecar:
    def test_every_point_has_finite_percent_of_peak(self, entries):
        side = build_sidecar(entries, title="t")
        assert len(side["points"]) == 2
        for pt in side["points"]:
            pct = pt["summary"]["percent_of_peak"]
            assert isinstance(pct, float) and math.isfinite(pct)
            assert 0.0 < pct <= 100.0
            for axis_pct in pt["summary"]["axis_percent_of_peak"].values():
                assert math.isfinite(axis_pct)

    def test_points_carry_model_diff_and_heatmaps(self, entries):
        side = build_sidecar(entries, title="t")
        for pt in side["points"]:
            assert pt["summary"]["model"]["agrees"] is True
            assert sorted(pt["heatmaps"]) == ["x", "y", "z"]
            for values in pt["heatmaps"].values():
                assert len(values) == 32  # one cell per node

    def test_experiments_are_recorded(self, entries):
        side = build_sidecar(entries, [_experiment()], title="t")
        assert len(side["experiments"]) == 1
        exp = side["experiments"][0]
        assert exp["exp_id"] == "fig1_ar_midplane"
        assert exp["rows"] == _experiment().rows
        assert exp["provenance"]["points_simulated"] == 2

    def test_sidecar_is_json_clean(self, entries):
        side = build_sidecar(entries, [_experiment()], title="t")
        json.dumps(side, allow_nan=False)  # raises on NaN/inf


class TestHtml:
    def test_html_is_self_contained_and_complete(self, entries):
        side = build_sidecar(entries, [_experiment()], title="My report")
        html = render_html(side)
        assert html.startswith("<!DOCTYPE html>")
        assert "My report" in html
        assert "Percent of peak" in html
        assert "<svg" in html  # heatmaps inlined
        assert "AR direct on a midplane" in html
        # No external fetches: the report must open offline.  (The SVG
        # xmlns namespace URI is an identifier, not a fetch.)
        assert 'src="http' not in html and 'href="http' not in html

    def test_comparative_table_lists_every_point(self, entries):
        side = build_sidecar(entries, title="t")
        html = render_html(side)
        for pt in side["points"]:
            assert pt["point"] in html

    def test_markup_is_escaped(self, entries):
        exp = _experiment()
        exp.title = "<script>alert(1)</script>"
        side = build_sidecar(entries, [exp], title="t")
        html = render_html(side)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html


class TestWriteReport:
    def test_write_report_emits_both_files(self, entries, tmp_path):
        out = tmp_path / "report"
        html_path, json_path = map(
            Path, write_report(out, entries, [_experiment()], title="t")
        )
        assert html_path.name == REPORT_HTML and html_path.exists()
        assert json_path.name == REPORT_JSON and json_path.exists()
        side = json.loads(json_path.read_text())
        assert side["title"] == "t"
        assert len(side["points"]) == 2
        assert html_path.read_text().startswith("<!DOCTYPE html>")

    def test_nan_in_payload_fails_loudly(self, entries, tmp_path):
        bad = [json.loads(json.dumps(e)) for e in entries]
        bad[0]["link_stats"]["time_cycles"] = float("nan")
        with pytest.raises(ValueError):
            write_report(tmp_path / "bad", bad, title="t")


class TestDegenerateInputs:
    """An empty or fully-failed sweep must still produce valid files —
    the report is exactly what a human reaches for when a run went
    sideways, so it may never crash on a degenerate input."""

    def test_empty_sweep_renders_valid_report(self, tmp_path):
        html_path, json_path = map(
            Path, write_report(tmp_path / "empty", [], [], title="empty")
        )
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>") and html.endswith(
            "</body></html>"
        )
        side = json.loads(json_path.read_text())
        assert side["points"] == [] and side["experiments"] == []
        json.dumps(side, allow_nan=False)

    def test_all_failed_experiment_renders_valid_report(self, tmp_path):
        res = ExperimentResult(
            exp_id="fig1_ar_midplane",
            title="AR direct on a midplane",
            columns=["m bytes", "measured us"],
        )
        res.rows = []  # every point failed; nothing measured
        res.failures = [
            {"kind": "timeout", "key": "k1", "label": "8x8x8/m64"},
            {"kind": "crash", "key": "k2", "label": "8x8x8/m256"},
        ]
        res.notes.append("INCOMPLETE: 2 point(s) failed")
        html_path, json_path = map(
            Path, write_report(tmp_path / "failed", [], [res], title="t")
        )
        html = html_path.read_text()
        assert "INCOMPLETE: 2 point(s)" in html
        assert "timeout" in html
        side = json.loads(json_path.read_text())
        assert side["experiments"][0]["rows"] == []
        assert len(side["experiments"][0]["failures"]) == 2

    def test_entry_without_link_stats_is_listed(self, tmp_path):
        entries = [{"point": "ARDirect/4x4x2/m64/s1"}]  # no analytics
        html_path, json_path = map(
            Path, write_report(tmp_path / "bare", entries, title="t")
        )
        html = html_path.read_text()
        assert "ARDirect/4x4x2/m64/s1" in html
        assert "No link-stats payload" in html
        side = json.loads(json_path.read_text())
        assert "summary" not in side["points"][0]


class TestTrends:
    def _history(self, tmp_path, n=3) -> str:
        from repro.obs.history import RunHistory

        store = RunHistory(tmp_path / "hist")
        for i in range(n):
            res = _experiment()
            res.provenance = dict(
                res.provenance, scale="test", wall_s=0.5 + i
            )
            store.append_experiment(res)
        return str(store.path)

    def test_history_feeds_sparkline_trend_section(self, tmp_path):
        hist = self._history(tmp_path)
        side = build_sidecar(
            [], [_experiment()], title="t", history=hist
        )
        samples = side["trends"]["fig1_ar_midplane"]
        assert len(samples) == 3
        assert [s["wall_s"] for s in samples] == [0.5, 1.5, 2.5]
        html = render_html(side)
        assert "Trend: 3 recorded runs" in html
        assert "<polyline" in html  # the sparkline itself

    def test_single_record_has_no_trend_section(self, tmp_path):
        hist = self._history(tmp_path, n=1)
        side = build_sidecar([], [_experiment()], title="t", history=hist)
        assert "Trend:" not in render_html(side)

    def test_missing_store_is_tolerated(self, tmp_path):
        side = build_sidecar(
            [],
            [_experiment()],
            title="t",
            history=str(tmp_path / "nowhere"),
        )
        assert side["trends"] == {}
        render_html(side)

    def test_no_history_means_no_trends(self):
        side = build_sidecar([], [_experiment()], title="t")
        assert side["trends"] == {}


class TestCliIntegration:
    def test_cli_report_flag_writes_report(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "rep"
        rc = main(
            [
                "run",
                "fig1_ar_midplane",
                "--scale",
                "tiny",
                "--report",
                str(out),
            ]
        )
        assert rc == 0
        assert (out / REPORT_HTML).exists()
        side = json.loads((out / REPORT_JSON).read_text())
        assert side["points"], "report collected no points"
        for pt in side["points"]:
            assert math.isfinite(pt["summary"]["percent_of_peak"])
        assert len(side["experiments"]) == 1
        assert "report:" in capsys.readouterr().out

    def test_run_experiment_report_dir(self, tmp_path):
        from repro.experiments.registry import run_experiment

        out = tmp_path / "exp"
        result = run_experiment(
            "fig1_ar_midplane", scale="tiny", report_dir=str(out)
        )
        assert result.rows
        side = json.loads((out / REPORT_JSON).read_text())
        assert side["points"]
        assert side["experiments"][0]["exp_id"] == "fig1_ar_midplane"
