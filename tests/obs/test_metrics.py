"""Metrics instruments: counters, gauges, histograms, time series."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    aggregate_metrics,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == {"type": "counter", "value": 5}

    def test_gauge_tracks_last_and_peak(self):
        g = Gauge()
        g.set(3.0)
        g.set(9.0)
        g.set(2.0)
        d = g.to_dict()
        assert d["value"] == 2.0
        assert d["peak"] == 9.0
        assert d["samples"] == 3

    def test_histogram_pow2_buckets(self):
        h = Histogram()
        for v in (0.5, 1.0, 3.0, 3.9, 100.0):
            h.observe(v)
        d = h.to_dict()
        # 0.5 -> bucket 0; 1.0 -> bucket 1; 3.0, 3.9 -> bucket 2;
        # 100 -> bucket 7 ([64, 128)).
        assert d["buckets_pow2"][0] == 1
        assert d["buckets_pow2"][1] == 1
        assert d["buckets_pow2"][2] == 2
        assert d["buckets_pow2"][7] == 1
        assert d["count"] == 5
        assert d["min"] == 0.5
        assert d["max"] == 100.0
        assert d["mean"] == pytest.approx(sum((0.5, 1.0, 3.0, 3.9, 100.0)) / 5)

    def test_empty_histogram_serializes_finite(self):
        d = Histogram().to_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0
        assert d["mean"] == 0.0

    def test_timeseries_buckets_by_time(self):
        ts = TimeSeries(bucket_cycles=10.0, max_buckets=8)
        ts.add(0.0, 1.0)
        ts.add(9.9, 2.0)
        ts.add(25.0, 4.0)
        assert ts.buckets == [3.0, 0.0, 4.0]

    def test_timeseries_rebins_to_stay_bounded(self):
        ts = TimeSeries(bucket_cycles=1.0, max_buckets=4)
        for t in range(32):
            ts.add(float(t), 1.0)
        assert len(ts.buckets) <= 4
        assert sum(ts.buckets) == 32.0  # re-binning never loses mass
        assert ts.bucket_cycles == 8.0  # doubled 1 -> 2 -> 4 -> 8

    def test_timeseries_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(bucket_cycles=0.0)
        with pytest.raises(ValueError):
            TimeSeries(max_buckets=1)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")

    def test_name_type_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            r.gauge("x")

    def test_to_dict_is_sorted_and_json_native(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.gauge("a").set(1.0)
        r.timeseries("c", bucket_cycles=5.0).add(2.0, 1.0)
        d = r.to_dict()
        assert list(d) == ["a", "b", "c"]
        assert json.loads(json.dumps(d)) == d


class TestAggregate:
    def test_counters_sum_gauges_peak_histograms_merge(self):
        a = MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("g").set(5.0)
        a.histogram("h").observe(3.0)
        a.timeseries("t", bucket_cycles=10.0).add(0.0, 7.0)
        b = MetricsRegistry()
        b.counter("n").inc(3)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(100.0)
        b.timeseries("t", bucket_cycles=20.0).add(0.0, 3.0)
        agg = aggregate_metrics([a.to_dict(), b.to_dict()])
        assert agg["n"]["value"] == 5
        assert agg["g"]["peak"] == 9.0
        assert agg["h"]["count"] == 2
        assert agg["h"]["min"] == 3.0
        assert agg["h"]["max"] == 100.0
        assert agg["t"] == {"type": "timeseries", "total": 10.0, "points": 2}

    def test_empty(self):
        assert aggregate_metrics([]) == {}
