"""Cross-run history store + regression verdicts (DESIGN.md section 15).

The store's load-bearing promises: a schema-pinned header and torn-tail
healing (an interrupted run never corrupts the file for the next one),
payload digests that are identical for identical results regardless of
job count (determinism proof), and a diff CLI whose verdict CI can gate
on — a 2x slowdown must classify as ``regression``, identical runs as
``neutral``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import ExperimentResult
from repro.obs.history import (
    DEFAULT_TOLERANCE,
    HISTORY_VERSION,
    RunHistory,
    bench_record,
    diff_records,
    experiment_record,
    format_diff,
    main,
    metric_direction,
    payload_digest,
)
from repro.runner import counters


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    counters.reset()


def _result(wall_s=1.0, measured=10.5) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="fig1_ar_midplane",
        title="AR direct on a midplane",
        columns=["m bytes", "measured us"],
    )
    res.rows = [
        {"m bytes": 64, "measured us": measured},
        {"m bytes": 256, "measured us": measured * 4},
    ]
    res.provenance = {
        "schema_version": 2,
        "seed": 1,
        "scale": "tiny",
        "config_fingerprint": "cafe" * 8,
        "points": ["k1", "k2"],
        "wall_s": wall_s,
        "points_simulated": 2,
        "points_cached": 0,
        "git": "abc1234",
    }
    return res


BENCH_REPORT = {
    "schema": 2,
    "scale": "ci",
    "python": "3.11.0",
    "machine": "x86_64",
    "cpus": 4,
    "provenance": {"git": "abc1234"},
    "benchmarks": [
        {
            "name": "single_point_ci",
            "shape": "4x4x4",
            "msg_bytes": 64,
            "seed": 1,
            "events": 48960,
            "time_cycles": 53720.67,
            "wall_s": 0.15,
            "events_per_sec": 326400.0,
        }
    ],
}


class TestRecords:
    def test_experiment_payload_is_deterministic(self):
        a = experiment_record(_result())
        b = experiment_record(_result())
        assert a["payload"] == b["payload"]
        assert a["payload_digest"] == b["payload_digest"]
        assert a["id"] == a["payload_digest"][:12]

    def test_meta_is_excluded_from_the_digest(self):
        fast = experiment_record(_result(wall_s=0.1))
        slow = experiment_record(_result(wall_s=99.0))
        assert fast["payload_digest"] == slow["payload_digest"]
        assert fast["meta"]["wall_s"] != slow["meta"]["wall_s"]

    def test_changed_rows_change_the_digest(self):
        a = experiment_record(_result(measured=10.5))
        b = experiment_record(_result(measured=11.5))
        assert a["payload_digest"] != b["payload_digest"]

    def test_column_means_cover_numeric_columns(self):
        rec = experiment_record(_result(measured=10.0))
        assert rec["payload"]["metrics"] == {
            "m bytes": 160.0,
            "measured us": 25.0,
        }

    def test_bench_record_flattens_metrics_into_meta(self):
        rec = bench_record(BENCH_REPORT)
        assert rec["payload"]["kind"] == "bench"
        assert rec["payload"]["benchmarks"]["single_point_ci"]["events"] == 48960
        assert rec["meta"]["metrics"]["single_point_ci.wall_s"] == 0.15
        assert rec["meta"]["git"] == "abc1234"
        # Perf numbers must not leak into the deterministic payload.
        assert "wall_s" not in rec["payload"]["benchmarks"]["single_point_ci"]

    def test_digest_is_canonical_json(self):
        assert payload_digest({"b": 1, "a": 2}) == payload_digest(
            {"a": 2, "b": 1}
        )


class TestStore:
    def test_fresh_store_writes_header_then_records(self, tmp_path):
        store = RunHistory(tmp_path / "runs")
        store.append_experiment(_result())
        lines = store.path.read_text().splitlines()
        assert json.loads(lines[0]) == {
            "kind": "header",
            "history_version": HISTORY_VERSION,
        }
        assert len(store.records()) == 1

    def test_directory_path_resolves_to_history_jsonl(self, tmp_path):
        assert RunHistory(tmp_path).path == tmp_path / "history.jsonl"
        direct = tmp_path / "custom.jsonl"
        assert RunHistory(direct).path == direct

    def test_torn_tail_is_healed_on_append(self, tmp_path):
        store = RunHistory(tmp_path / "h.jsonl")
        store.append_experiment(_result())
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"run","payload":{"tru')  # SIGKILL mid-write
        store.append_experiment(_result(measured=11.0))
        recs = store.records()
        assert len(recs) == 2  # torn line skipped, both real records load
        assert recs[0]["payload_digest"] != recs[1]["payload_digest"]

    def test_future_history_version_refuses_to_load(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "history_version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="line-format version 999"):
            RunHistory(path).records()

    def test_resolve_refs(self, tmp_path):
        store = RunHistory(tmp_path / "h.jsonl")
        first = store.append_experiment(_result(measured=1.0))
        last = store.append_experiment(_result(measured=2.0))
        assert store.resolve("last")["id"] == last["id"]
        assert store.resolve("prev")["id"] == first["id"]
        assert store.resolve("0")["id"] == first["id"]
        assert store.resolve("-1")["id"] == last["id"]
        assert store.resolve(first["id"][:8])["id"] == first["id"]
        with pytest.raises(LookupError):
            store.resolve("feedface")

    def test_trend_filters_by_exp_id(self, tmp_path):
        store = RunHistory(tmp_path / "h.jsonl")
        store.append_experiment(_result())
        store.append_bench(BENCH_REPORT)
        trend = store.trend("fig1_ar_midplane")
        assert len(trend) == 1
        assert store.trend("nope") == []


class TestJobCountIdentity:
    def test_jobs1_and_jobs2_append_identical_digests(self, tmp_path):
        """The acceptance criterion: a pooled sweep records the same
        payload digest as a sequential one."""
        from repro.experiments.registry import run_experiment

        hist = str(tmp_path / "hist")
        run_experiment("fig1_ar_midplane", scale="tiny", jobs=1, history=hist)
        run_experiment("fig1_ar_midplane", scale="tiny", jobs=2, history=hist)
        recs = RunHistory(hist).records()
        assert len(recs) == 2
        assert recs[0]["payload_digest"] == recs[1]["payload_digest"]


class TestDiff:
    def test_identical_runs_are_neutral(self):
        a = experiment_record(_result())
        b = experiment_record(_result())
        diff = diff_records(a, b)
        assert diff["verdict"] == "neutral"
        assert all(m["class"] == "neutral" for m in diff["metrics"])
        assert not diff["outcome_changed"]

    def test_2x_slowdown_is_a_regression(self):
        a = experiment_record(_result(wall_s=1.0))
        b = experiment_record(_result(wall_s=2.0))
        diff = diff_records(a, b)
        assert diff["verdict"] == "regression"
        (wall,) = [m for m in diff["metrics"] if m["name"] == "wall_s"]
        assert wall["class"] == "regression"
        assert wall["ratio"] == pytest.approx(2.0)

    def test_2x_speedup_is_an_improvement(self):
        a = experiment_record(_result(wall_s=2.0))
        b = experiment_record(_result(wall_s=1.0))
        assert diff_records(a, b)["verdict"] == "improvement"

    def test_directionless_metric_is_drift_not_verdict(self):
        # "measured us" contains no direction keyword... but "us" does
        # not match; "m bytes" neither.  Construct an explicitly unknown
        # metric and check it cannot drive the verdict.
        a = experiment_record(_result())
        b = experiment_record(_result())
        a["payload"]["metrics"]["mystery_column"] = 1.0
        b["payload"]["metrics"]["mystery_column"] = 100.0
        diff = diff_records(a, b)
        (m,) = [x for x in diff["metrics"] if x["name"] == "mystery_column"]
        assert m["class"] == "drift"
        assert diff["verdict"] == "neutral"

    def test_outcome_drift_flagged_for_same_config(self):
        a = experiment_record(_result(measured=10.0))
        b = experiment_record(_result(measured=20.0))
        diff = diff_records(a, b, tolerance=10.0)  # silence ratio classes
        assert diff["outcome_changed"]
        assert any("outcome drift" in w for w in diff["warnings"])

    def test_mismatched_context_warns(self):
        a = experiment_record(_result())
        b = experiment_record(_result())
        b["payload"]["scale"] = "paper"
        b["payload"]["seed"] = 7
        warnings = diff_records(a, b)["warnings"]
        assert any("scale differs" in w for w in warnings)
        assert any("seed differs" in w for w in warnings)

    def test_tolerance_bounds(self):
        a = experiment_record(_result(wall_s=1.0))
        b = experiment_record(_result(wall_s=1.0 + DEFAULT_TOLERANCE))
        assert diff_records(a, b)["verdict"] == "neutral"
        with pytest.raises(ValueError):
            diff_records(a, b, tolerance=-0.1)

    def test_format_diff_ends_with_verdict(self):
        a = experiment_record(_result())
        text = format_diff(diff_records(a, a))
        assert text.splitlines()[-1] == "verdict: neutral"


class TestDirections:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("wall_s", "lower"),
            ("single_point_ci.events_per_sec", "higher"),
            ("analytics_off_overhead_ci.overhead_frac", "lower"),
            ("sweep_scaling_ci.parallel_speedup", "higher"),
            ("time_cycles", "lower"),
            ("m bytes", None),
        ],
    )
    def test_direction_table(self, name, expected):
        assert metric_direction(name) == expected


class TestCli:
    def _store(self, tmp_path, *walls):
        store = RunHistory(tmp_path / "h.jsonl")
        for w in walls:
            store.append_experiment(_result(wall_s=w))
        return str(store.path)

    def test_list_and_show(self, tmp_path, capsys):
        path = self._store(tmp_path, 1.0, 2.0)
        assert main(["list", path]) == 0
        out = capsys.readouterr().out
        assert "fig1_ar_midplane" in out and out.count("\n") == 2
        assert main(["show", path, "last"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["meta"]["wall_s"] == 2.0

    def test_diff_regression_exits_nonzero(self, tmp_path, capsys):
        path = self._store(tmp_path, 1.0, 2.5)
        assert main(["diff", path]) == 1
        assert "verdict: regression" in capsys.readouterr().out

    def test_diff_neutral_exits_zero(self, tmp_path, capsys):
        path = self._store(tmp_path, 1.0, 1.0)
        assert main(["diff", path]) == 0
        assert "verdict: neutral" in capsys.readouterr().out

    def test_diff_single_record_has_nothing_to_compare(self, tmp_path, capsys):
        path = self._store(tmp_path, 1.0)
        assert main(["diff", path]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_append_bench_then_diff(self, tmp_path, capsys):
        report_path = tmp_path / "BENCH.json"
        report_path.write_text(json.dumps(BENCH_REPORT))
        hist = str(tmp_path / "bench-hist.jsonl")
        assert main(["append-bench", hist, str(report_path)]) == 0
        assert main(["append-bench", hist, str(report_path)]) == 0
        assert main(["diff", hist]) == 0
        out = capsys.readouterr().out
        assert "single_point_ci.events_per_sec" in out
        assert "verdict: neutral" in out
