"""Tracer semantics and exporters (JSONL, Chrome trace)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.tracer import (
    EVENT_KINDS,
    Tracer,
    chrome_events,
    write_chrome_trace,
    write_jsonl,
)


def _tiny_trace() -> Tracer:
    tr = Tracer()
    tr.emit(0.0, "inject", 0, 0)
    tr.emit(1.5, "link", 0, 2, 10.0, 0)
    tr.emit(3.0, "queue", 1, 2, 2, 0)
    tr.emit(20.0, "deliver", 1, 0, 0, 0.0, "direct", True)
    return tr


class TestTracer:
    def test_rows_sorted_by_time_then_emission(self):
        tr = Tracer()
        tr.emit(5.0, "inject", 1, 1)
        tr.emit(1.0, "inject", 0, 0)
        tr.emit(1.0, "deliver", 0, 0, 0, 0.0, "direct", True)
        rows = tr.rows()
        assert [r[0] for r in rows] == [1.0, 1.0, 5.0]
        assert rows[0][2] == "inject"  # same time: emission order wins
        assert rows[1][2] == "deliver"

    def test_ring_buffer_keeps_latest(self):
        tr = Tracer(capacity=3)
        for i in range(10):
            tr.emit(float(i), "inject", 0, i)
        assert tr.total == 10
        assert tr.dropped == 7
        assert [r[0] for r in tr.rows()] == [7.0, 8.0, 9.0]

    def test_sampling_is_by_pid(self):
        tr = Tracer(sample=3)
        assert [pid for pid in range(9) if tr.want(pid)] == [0, 3, 6]

    def test_kind_filter_validated(self):
        assert Tracer(kinds=["inject", "deliver"]).kinds == {
            "inject", "deliver",
        }
        with pytest.raises(ValueError, match="unknown trace event kinds"):
            Tracer(kinds=["inject", "teleport"])

    def test_payload_is_json_native_and_counts_match(self):
        tr = _tiny_trace()
        p = tr.to_payload()
        assert json.loads(json.dumps(p)) == p
        assert p["total"] == 4
        assert p["counts"] == {
            "deliver": 1, "inject": 1, "link": 1, "queue": 1,
        }
        assert all(k in EVENT_KINDS for k in p["counts"])

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample=0)


class TestJsonl:
    def test_named_fields_per_kind(self):
        buf = io.StringIO()
        n = write_jsonl(_tiny_trace().to_payload(), buf, point="p0")
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert n == len(lines) == 4
        by_kind = {rec["kind"]: rec for rec in lines}
        assert by_kind["link"] == {
            "t": 1.5, "kind": "link", "node": 0, "dir": 2, "dur": 10.0,
            "pid": 0, "point": "p0",
        }
        assert by_kind["deliver"]["phase"] == "direct"
        assert by_kind["deliver"]["final"] is True

    def test_writes_to_path(self, tmp_path):
        dest = tmp_path / "t.jsonl"
        write_jsonl(_tiny_trace().to_payload(), str(dest))
        assert len(dest.read_text().splitlines()) == 4


class TestChromeTrace:
    def test_event_shapes(self):
        recs = list(chrome_events(_tiny_trace().to_payload()))
        link = [r for r in recs if r.get("ph") == "X"]
        inst = [r for r in recs if r.get("ph") == "i"]
        meta = [r for r in recs if r.get("ph") == "M"]
        assert len(link) == 1 and link[0]["dur"] == 10.0
        assert link[0]["tid"] == 3  # direction 2 -> thread 3
        assert {r["name"] for r in inst} == {"inject", "queue", "deliver"}
        assert any(r["name"] == "process_name" for r in meta)
        assert any(r["name"] == "thread_name" for r in meta)

    def test_multi_point_namespacing(self, tmp_path):
        p = _tiny_trace().to_payload()
        path = tmp_path / "trace.json"
        write_chrome_trace([p, p], str(path), labels=["a", "b"])
        doc = json.loads(path.read_text())
        pids = {r["pid"] for r in doc["traceEvents"]}
        # Nodes 0-1 of point 0 and nodes 0-1 of point 1 (stride 2).
        assert pids == {0, 1, 2, 3}
        names = {
            r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names == {"a:node 0", "a:node 1", "b:node 0", "b:node 1"}
